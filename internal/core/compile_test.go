package core

import (
	"math/rand"
	"sort"
	"testing"

	"fpsping/internal/mgf"
)

// TestCompiledMatchesModel pins that every compiled evaluator returns
// exactly the bits of the corresponding one-shot Model method.
func TestCompiledMatchesModel(t *testing.T) {
	for _, k := range []int{9, 20} {
		m := figure3Model(k).WithDownlinkLoad(0.5)
		cm, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		wantQ, err := m.RTTQuantile()
		if err != nil {
			t.Fatal(err)
		}
		gotQ, err := cm.RTTQuantile()
		if err != nil {
			t.Fatal(err)
		}
		if gotQ != wantQ {
			t.Errorf("K=%d: compiled quantile %v != model %v", k, gotQ, wantQ)
		}
		wantMean, err := m.MeanRTT()
		if err != nil {
			t.Fatal(err)
		}
		gotMean, err := cm.MeanRTT()
		if err != nil {
			t.Fatal(err)
		}
		if gotMean != wantMean {
			t.Errorf("K=%d: compiled mean %v != model %v", k, gotMean, wantMean)
		}
		d := wantQ * 0.8
		wantTail, err := m.RTTTail(d)
		if err != nil {
			t.Fatal(err)
		}
		gotTail, err := cm.RTTTail(d)
		if err != nil {
			t.Fatal(err)
		}
		if gotTail != wantTail {
			t.Errorf("K=%d: compiled tail %v != model %v", k, gotTail, wantTail)
		}
		wantC, err := m.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := cm.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		if gotC != wantC {
			t.Errorf("K=%d: compiled decomposition %+v != model %+v", k, gotC, wantC)
		}
	}
}

// TestWarmStartBitIdentical is the warm-start property test: walking a load
// grid with one mgf.TailHint threaded through consecutive quantile
// inversions (the SweepLoads discipline) must return exactly the bits of
// independent per-point inversions — across the paper's grid, seeded random
// grids, and a deliberately unsorted grid (the hint is verified by a probe,
// so correctness never depends on the walk being monotone).
func TestWarmStartBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grids := [][]float64{PaperLoadGrid()}
	for g := 0; g < 3; g++ {
		grid := make([]float64, 12)
		for i := range grid {
			grid[i] = 0.03 + 0.87*rng.Float64()
		}
		sort.Float64s(grid)
		grids = append(grids, grid)
	}
	grids = append(grids, []float64{0.5, 0.1, 0.8, 0.3, 0.9, 0.05, 0.6})
	for _, k := range []int{9, 20} {
		m := figure3Model(k)
		for gi, grid := range grids {
			var hint mgf.TailHint
			for _, rho := range grid {
				at := m.WithDownlinkLoad(rho)
				cm, err := at.Compile()
				if err != nil {
					t.Fatalf("K=%d grid %d rho=%v: %v", k, gi, rho, err)
				}
				warm, err := cm.RTTQuantileWarm(&hint)
				if err != nil {
					t.Fatalf("K=%d grid %d rho=%v: warm: %v", k, gi, rho, err)
				}
				cold, err := at.RTTQuantile()
				if err != nil {
					t.Fatalf("K=%d grid %d rho=%v: cold: %v", k, gi, rho, err)
				}
				if warm != cold {
					t.Errorf("K=%d grid %d rho=%v: warm %v != cold %v (diff %g)",
						k, gi, rho, warm, cold, warm-cold)
				}
			}
		}
	}
}

// TestSweepLoadsWarmMatchesParallel pins the same property end to end:
// the serial sweep (hint threaded) and the parallel sweep (independent
// points) must produce identical series.
func TestSweepLoadsWarmMatchesParallel(t *testing.T) {
	m := figure3Model(9)
	loads := PaperLoadGrid()
	serial, err := m.SweepLoads(loads)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := m.SweepLoadsParallel(loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d points, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("point %d: serial %+v != parallel %+v", i, serial[i], parallel[i])
		}
	}
}

// TestCompiledEvaluatorAllocs is the allocation contract of the evaluate-
// many path: once a level is solved, re-evaluating the compiled quantile
// allocates nothing.
func TestCompiledEvaluatorAllocs(t *testing.T) {
	cm, err := figure3Model(9).WithDownlinkLoad(0.5).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.RTTQuantile(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cm.RTTQuantile(); err != nil {
			t.Error(err)
		}
	})
	if allocs > 0 {
		t.Errorf("compiled RTTQuantile allocates %v per run after solve, want 0", allocs)
	}
}

// BenchmarkModelCompiledVsCold measures the two ends of the pipeline: cold
// is the full per-call recomputation (queues, roots, convolution,
// inversion), compiled is the evaluate-many path over a staged model.
func BenchmarkModelCompiledVsCold(b *testing.B) {
	m := figure3Model(9).WithDownlinkLoad(0.5)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.RTTQuantile(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		cm, err := m.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cm.RTTQuantile(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cm.RTTQuantile(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepPaperGridCold measures a cold paper-figure sweep: warm is
// the serial walk (SweepLoads, one LoadPath through every point), continued
// is the same walk driven explicitly through a LoadPath, and independent
// recompiles and re-inverts every point from scratch. The warm/independent
// gap is the continuation's worth — identical values, different cost.
func BenchmarkSweepPaperGridCold(b *testing.B) {
	m := figure3Model(9)
	loads := PaperLoadGrid()
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.SweepLoads(loads); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("continued", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			path := m.NewLoadPath()
			for _, rho := range loads {
				if _, err := path.Point(rho); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, rho := range loads {
				if _, err := m.WithDownlinkLoad(rho).RTTQuantile(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkDimensionCold measures a cold §4 dimensioning run: the bisection
// probes a few dozen neighbouring loads, each continued from the previous
// probe through the default LoadPath evaluator.
func BenchmarkDimensionCold(b *testing.B) {
	m := figure3Model(9)
	for i := 0; i < b.N; i++ {
		if _, err := m.MaxLoad(0.060); err != nil {
			b.Fatal(err)
		}
	}
}
