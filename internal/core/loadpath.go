package core

import (
	"fpsping/internal/mgf"
	"fpsping/internal/queueing"
)

// LoadPath walks one scenario along the load axis, carrying everything a
// point's evaluation can reuse from its neighbour:
//
//   - the downstream D/E_K/1 root solution, seeding the next compile's
//     Newton polish instead of a cold fixed-point iteration
//     (queueing.DEK1.SolveFrom);
//   - the tail hint, warm-starting the next quantile inversion's bracket
//     search from the previous answer (mgf.TailHint);
//   - one quadrature workspace, so consecutive inversions reuse warm
//     Simpson grids instead of a pool round-trip per point.
//
// All three carriers are bit-exact: a point evaluated through a path is
// byte-identical to WithDownlinkLoad(rho).RTTQuantile() evaluated cold, so
// a path changes only the cost of a walk, never its values. Sweeps
// (SweepLoads, SweepGridWith chunks), dimensioning bisections (MaxLoadWith)
// and the daemon's memoized grids all drive their points through one.
//
// Continuation does not require monotone loads — any neighbouring parameter
// is a good Newton seed, and validation falls back to the cold solve on any
// doubt — but monotone walks converge fastest. A LoadPath is NOT safe for
// concurrent use: parallel walkers each hold their own (the chunked
// SweepGridWith builds one per chunk).
type LoadPath struct {
	m    Model
	prev *queueing.DEK1Solution
	hint mgf.TailHint
	ws   mgf.Workspace
}

// NewLoadPath starts a load-axis walk over the model's scenario (Gamers is
// overridden per point via WithDownlinkLoad).
func (m Model) NewLoadPath() *LoadPath { return &LoadPath{m: m} }

// Compile stages the model at downlink load rho, warm-starting the
// downstream root solve from the previous point on the path, and adopts the
// resulting solution as the seed for the next point.
func (p *LoadPath) Compile(rho float64) (*CompiledModel, error) {
	cm, err := p.m.WithDownlinkLoad(rho).CompileFrom(p.prev)
	if err != nil {
		return nil, err
	}
	p.prev = cm.DownstreamSolution()
	return cm, nil
}

// Reseed adopts an externally produced compiled model — typically a memo
// hit that skipped this path's Compile — as the continuation seed for the
// next point, so a walk over partially cached loads keeps warm-starting.
func (p *LoadPath) Reseed(cm *CompiledModel) {
	if cm != nil && cm.DownstreamSolution() != nil {
		p.prev = cm.DownstreamSolution()
	}
}

// Quantile evaluates cm's RTT quantile (seconds) through the path's tail
// hint and workspace. cm need not have come from this path's Compile: a
// memoized compiled model works too (and a solved-level cache hit still
// updates the hint for the next point).
func (p *LoadPath) Quantile(cm *CompiledModel) (float64, error) {
	return cm.rttQuantileWarmWS(&p.hint, &p.ws)
}

// Point evaluates one sweep point at downlink load rho: a Compile plus a
// Quantile, both warm-started from the path's previous point.
func (p *LoadPath) Point(rho float64) (SweepPoint, error) {
	cm, err := p.Compile(rho)
	if err != nil {
		return SweepPoint{}, err
	}
	rtt, err := p.Quantile(cm)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{Load: rho, Gamers: cm.Model.Gamers, RTT: rtt}, nil
}
