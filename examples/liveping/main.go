// Live ping: run the modeled system on real UDP sockets and compare the
// measured in-game ping with the paper's prediction.
//
// A game server ticks every 40 ms on loopback; four bot clients connect
// through a userspace shaper emulating the DSL path (128 kbit/s up,
// 1024 kbit/s down, 5 ms one-way delay). The bots measure their ping the way
// game clients do - from the server's echo of their update timestamps -
// which includes the server's tick-wait on top of the two network delays the
// model predicts (mean tick wait: T/2).
//
//	go run ./examples/liveping
package main

import (
	"fmt"
	"log"
	"time"

	"fpsping/internal/core"
	"fpsping/internal/emu"
)

func main() {
	const (
		tick    = 40 * time.Millisecond
		bots    = 4
		measure = 8 * time.Second
	)

	srv, err := emu.NewServer(emu.ServerConfig{
		Addr:         "127.0.0.1:0",
		TickInterval: tick,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	shaper, err := emu.NewShaper(emu.ShaperConfig{
		ListenAddr: "127.0.0.1:0",
		ServerAddr: srv.Addr().String(),
		UpRate:     128_000,
		DownRate:   1_024_000,
		Delay:      5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer shaper.Close()

	fmt.Printf("server %s, shaper %s; %d bots measuring for %v...\n",
		srv.Addr(), shaper.Addr(), bots, measure)

	var clients []*emu.Client
	for i := 0; i < bots; i++ {
		c, err := emu.NewClient(emu.ClientConfig{
			ServerAddr:     shaper.Addr().String(),
			UpdateInterval: tick,
			Seed:           uint64(10 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	time.Sleep(measure)

	var meanSum float64
	var total int
	for i, c := range clients {
		ps := c.Pings()
		fmt.Printf("bot %d: %4d pings, mean %6.2f ms, max %6.2f ms\n",
			i, ps.Samples, 1e3*ps.Summary.Mean(), 1e3*ps.Summary.Max())
		meanSum += ps.Summary.Mean() * float64(ps.Samples)
		total += ps.Samples
	}
	if total == 0 {
		log.Fatal("no pings measured")
	}
	measured := meanSum / float64(total)

	// Model prediction: network mean RTT for 4 gamers on this path, plus the
	// mean tick-wait T/2 that the in-game ping inherently contains, plus the
	// 2x5ms shaper propagation.
	m := core.DSLDefaults()
	m.Gamers = bots
	m.ServerPacketBytes = 125
	m.BurstInterval = tick.Seconds()
	m.ErlangOrder = 9
	m.FixedDelay = 2 * 0.005
	meanRTT, err := m.MeanRTT()
	if err != nil {
		log.Fatal(err)
	}
	predicted := meanRTT + tick.Seconds()/2

	fmt.Printf("\nmeasured mean in-game ping: %6.2f ms\n", 1e3*measured)
	fmt.Printf("model mean network RTT:     %6.2f ms\n", 1e3*meanRTT)
	fmt.Printf("+ mean tick wait T/2:       %6.2f ms\n", 1e3*tick.Seconds()/2)
	fmt.Printf("predicted in-game ping:     %6.2f ms\n", 1e3*predicted)
	fmt.Println("\n(differences of a few ms reflect OS timer granularity and loopback scheduling)")
}
