// Dimensioning: how many gamers can an ISP put behind one aggregation link?
//
// This reproduces the closing exercise of the paper's §4: given the gaming
// share C of the bottleneck link and a ping bound ("hard-core gamers simply
// choose not to connect to servers with a large ping time"), find the
// maximum tolerable load and the gamer count it corresponds to - for several
// burst-size regularities K and several tick rates.
//
//	go run ./examples/dimensioning
package main

import (
	"fmt"
	"log"

	"fpsping/internal/core"
)

func main() {
	const boundMs = 50.0 // Färber's "excellent game play" threshold

	fmt.Printf("RTT bound %.0f ms, PS=125B, C=5 Mbit/s (paper §4)\n\n", boundMs)
	fmt.Printf("%-8s %-8s %12s %10s %14s\n", "T [ms]", "K", "max load", "max gamers", "RTT at max")
	for _, tMs := range []float64{40, 60} {
		for _, k := range []int{2, 9, 20} {
			m := core.DSLDefaults()
			m.ServerPacketBytes = 125
			m.BurstInterval = tMs / 1000
			m.ErlangOrder = k
			res, err := m.MaxLoad(boundMs / 1000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8.0f %-8d %11.1f%% %10d %12.1fms\n",
				tMs, k, 100*res.MaxDownlinkLoad, res.MaxGamers, 1000*res.RTTAtMax)
		}
	}
	fmt.Println("\npaper (T=40ms): ~20%/40, ~40%/80, ~60%/120 gamers for K=2/9/20")
	fmt.Println("conclusion: the tolerable gaming load on the bottleneck is surprisingly low,")
	fmt.Println("and it hinges on the burst-size regularity K - worth measuring at scale (§5).")
}
