// LAN party: recreate the measurement behind the paper's Table 3.
//
// Twelve players battle on a simulated 100 Mbit/s LAN for six minutes while
// every packet is captured; the trace is then run through the same analysis
// pipeline the authors used: per-direction packet statistics, burst
// grouping, burst-size extraction, and the two Erlang-order fits of §2.3.2
// (CoV method vs tail fit - the disagreement that motivates Figure 1).
//
//	go run ./examples/lanparty
package main

import (
	"fmt"
	"log"

	"fpsping/internal/experiments"
	"fpsping/internal/runner"
)

func main() {
	fmt.Println("simulating a 12-player Unreal Tournament 2003 LAN party (6 minutes)...")
	t3, err := experiments.Table3(experiments.DefaultSeed, 360, runner.DefaultWorkers())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t3.Render())
	fmt.Println(t3.Stats.FormatTable())

	fmt.Println("fitting the burst-size law (Figure 1)...")
	f1, err := experiments.Figure1(experiments.DefaultSeed, 360, runner.DefaultWorkers())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f1.Render())

	// Sketch the TDF the way the paper plots it (log axis, 0..4000 B).
	fmt.Println("burst-size tail distribution (log scale sketch):")
	for i := 0; i < len(f1.Empirical.X); i += 8 {
		x, y := f1.Empirical.X[i], f1.Empirical.Y[i]
		bar := ""
		for v := 1.0; v > y && len(bar) < 60; v /= 2 {
			bar += " "
		}
		fmt.Printf("%6.0fB %10.2g %s*\n", x, y, bar)
	}
}
