// Quickstart: predict the ping time of a DSL gaming scenario.
//
// The scenario is the paper's §4 default: 80-byte client updates every 40 ms
// on a 128 kbit/s uplink, 125-byte server packets in Erlang(9) bursts, a
// 5 Mbit/s aggregation link shared by 80 gamers. We ask: what ping will the
// 99.999th percentile player see?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fpsping/internal/core"
)

func main() {
	m := core.DSLDefaults() // PC=80B, Rup=128k, Rdown=1024k, C=5M, q=99.999%
	m.Gamers = 80
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.040 // the server ticks 25 times a second
	m.ErlangOrder = 9       // burst-size variability (Figure 1's tail fit)

	rtt, err := m.RTTQuantile()
	if err != nil {
		log.Fatal(err)
	}
	mean, err := m.MeanRTT()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %s\n", m)
	fmt.Printf("downlink load %.0f%%, uplink load %.0f%%\n",
		100*m.DownlinkLoad(), 100*m.UplinkLoad())
	fmt.Printf("mean ping           %6.1f ms\n", 1000*mean)
	fmt.Printf("99.999%% ping        %6.1f ms\n", 1000*rtt)

	// Where does the delay come from?
	comp, err := m.Decompose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  serialization     %6.1f ms\n", 1000*comp.Serialization)
	fmt.Printf("  upstream queue    %6.1f ms (isolated quantile)\n", 1000*comp.Upstream)
	fmt.Printf("  burst wait        %6.1f ms (isolated quantile)\n", 1000*comp.BurstWait)
	fmt.Printf("  in-burst position %6.1f ms (isolated quantile)\n", 1000*comp.Position)

	// Would these 80 gamers enjoy "excellent game play" (ping <= 50 ms)?
	if rtt <= 0.050 {
		fmt.Println("verdict: ping within the 50 ms excellent-play bound")
	} else {
		fmt.Println("verdict: ping exceeds the 50 ms excellent-play bound")
	}
}
