// Package fpsping_test is the benchmark harness of the reproduction: one
// benchmark per paper table and figure (regenerating the artifact each
// iteration), the ablation benches called out in DESIGN.md §5, and
// throughput benches for the heavy substrates. Run with:
//
//	go test -bench=. -benchmem
package fpsping_test

import (
	"fmt"
	"testing"

	"fpsping/internal/core"
	"fpsping/internal/dist"
	"fpsping/internal/experiments"
	"fpsping/internal/fit"
	"fpsping/internal/netsim"
	"fpsping/internal/queueing"
)

// --- The full report: serial vs parallel ---------------------------------

// BenchmarkAllExperiments regenerates the complete report (every table and
// figure, the `fpsping all` workload) at increasing worker counts. The
// output is byte-identical across sub-benchmarks; only the wall clock moves.
// This is the PR's headline number: the jobs=4/jobs=8 runs should beat
// jobs=1 by the machine's effective parallelism on a multi-core runner.
func BenchmarkAllExperiments(b *testing.B) {
	for _, jobs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Report(jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- One benchmark per paper artifact -----------------------------------

// BenchmarkTable1CounterStrike regenerates Table 1: sampling Färber's
// Counter-Strike laws and re-fitting the extreme distribution.
func BenchmarkTable1CounterStrike(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(experiments.DefaultSeed, 50_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2HalfLife regenerates Table 2 with family ranking.
func BenchmarkTable2HalfLife(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(experiments.DefaultSeed, 50_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3LANParty regenerates Table 3 from a (shortened) LAN-party
// simulation plus trace analysis.
func BenchmarkTable3LANParty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.DefaultSeed, 60, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1BurstTDF regenerates Figure 1 (burst TDF + Erlang fits).
func BenchmarkFigure1BurstTDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(experiments.DefaultSeed, 60, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ErlangOrder regenerates the three K-curves of Figure 3.
func BenchmarkFigure3ErlangOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4InterArrival regenerates the two T-curves of Figure 4.
func BenchmarkFigure4InterArrival(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDimensioning regenerates the §4 dimensioning rule (three K's).
func BenchmarkDimensioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Dimensioning(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRobustnessPS regenerates the §4 robustness checks.
func BenchmarkRobustnessPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) -------------------------------------

func ablationModel(rho float64) core.Model {
	m := core.DSLDefaults()
	m.ServerPacketBytes = 125
	m.BurstInterval = 0.060
	m.ErlangOrder = 9
	return m.WithDownlinkLoad(rho)
}

// BenchmarkAblationFullInversion measures the default full Erlang-mix
// inversion of eq. (35).
func BenchmarkAblationFullInversion(b *testing.B) {
	m := ablationModel(0.5)
	for i := 0; i < b.N; i++ {
		if _, err := m.RTTQuantile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDominantPole measures the dominant-pole shortcut.
func BenchmarkAblationDominantPole(b *testing.B) {
	m := ablationModel(0.5)
	for i := 0; i < b.N; i++ {
		if _, err := m.RTTQuantileDominantPole(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationChernoff measures the eq. (36) Chernoff-bound inversion.
func BenchmarkAblationChernoff(b *testing.B) {
	m := ablationModel(0.5)
	for i := 0; i < b.N; i++ {
		if _, err := m.RTTQuantileChernoff(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSumOfQuantiles measures the §3.3 sum-of-quantiles rule.
func BenchmarkAblationSumOfQuantiles(b *testing.B) {
	m := ablationModel(0.5)
	for i := 0; i < b.N; i++ {
		if _, err := m.RTTQuantileSumOfQuantiles(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationErlangOrderFit compares the cost of the two §2.3.2 order
// selectors on one synthetic burst sample.
func BenchmarkAblationErlangOrderFit(b *testing.B) {
	law, err := dist.ErlangByMean(18, 1852)
	if err != nil {
		b.Fatal(err)
	}
	xs := dist.SampleN(law, dist.NewRNG(1), 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fit.ErlangOrderByTail(xs, 40, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUpstreamEstimate compares the binomial (N*D/D/1) and
// Poisson (M/D/1) upstream tail estimates of eqs. (10) and (12).
func BenchmarkAblationUpstreamEstimate(b *testing.B) {
	q, err := queueing.NewNDD1(100, 0.040, 100, 500_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("binomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.QueueTailChernoff(2000)
		}
	})
	b.Run("poisson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.QueueTailPoisson(2000)
		}
	})
	b.Run("exact-binomial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.QueueTailExactBinomial(2000)
		}
	})
}

// --- Validation and substrate throughput ---------------------------------

// BenchmarkValidationLindley measures the D/E_K/1 Lindley validator used to
// cross-check the exact waiting-time law.
func BenchmarkValidationLindley(b *testing.B) {
	q, err := queueing.NewDEK1(9, 0.030, 0.060)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := queueing.SimulateDEK1(q, 200_000, 1, []float64{0.06}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWFQIsolation measures the WFQ scheduler scenario of §1 (gaming
// plus elastic flood through the bottleneck).
func BenchmarkWFQIsolation(b *testing.B) {
	erl, err := dist.ErlangByMean(9, 30*125)
	if err != nil {
		b.Fatal(err)
	}
	cfg := netsim.Config{
		Gamers:     30,
		ClientSize: dist.NewDeterministic(80),
		ClientIAT:  dist.NewDeterministic(0.060),
		BurstTotal: erl,
		BurstIAT:   dist.NewDeterministic(0.060),
		UpRate:     128_000,
		DownRate:   1_024_000,
		AggRate:    5_000_000,
		Background: &netsim.BackgroundConfig{Rate: 6_000_000, PacketSize: 1500},
		NewAggScheduler: func() netsim.Scheduler {
			w, err := netsim.NewWFQ(3, 5, 0)
			if err != nil {
				b.Fatal(err)
			}
			return w
		},
		ShuffleBurst: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := netsim.NewScenario(cfg, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimEventsPerSecond measures raw simulator throughput on the
// §4 scenario (events processed per wall second).
func BenchmarkNetsimEventsPerSecond(b *testing.B) {
	erl, err := dist.ErlangByMean(9, 100*125)
	if err != nil {
		b.Fatal(err)
	}
	cfg := netsim.Config{
		Gamers:       100,
		ClientSize:   dist.NewDeterministic(80),
		ClientIAT:    dist.NewDeterministic(0.040),
		BurstTotal:   erl,
		BurstIAT:     dist.NewDeterministic(0.040),
		UpRate:       128_000,
		DownRate:     1_024_000,
		AggRate:      5_000_000,
		ShuffleBurst: true,
	}
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		s, err := netsim.NewScenario(cfg, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run(5)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkDEK1PoleSolve measures the Appendix C root finder across orders.
func BenchmarkDEK1PoleSolve(b *testing.B) {
	for _, k := range []int{2, 9, 20, 28} {
		q, err := queueing.NewDEK1(k, 0.030, 0.060)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Zetas(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultiServerStudy regenerates the §3.2 multi-server extension
// table (D/E_K/1 baseline plus four M/E_K/1 splits).
func BenchmarkMultiServerStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiServerStudy(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJitterStudy regenerates the [23] jitter-injection table on a
// shortened horizon.
func BenchmarkJitterStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.JitterStudy(experiments.DefaultSeed, 20, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMEK1PoleSolve measures the polynomial pole finder behind the
// multi-server downstream queue.
func BenchmarkMEK1PoleSolve(b *testing.B) {
	for _, k := range []int{2, 9, 20} {
		q, err := queueing.NewMEK1(10, k, float64(k)*10/0.6)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Poles(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
